package baseline

import (
	"testing"
	"time"

	"sage/internal/cloud"
	"sage/internal/netsim"
	"sage/internal/rng"
	"sage/internal/simtime"
)

func testEnv() (*simtime.Scheduler, *netsim.Network) {
	sched := simtime.New()
	topo := cloud.DefaultAzure()
	net := netsim.New(sched, topo, rng.New(1), netsim.Options{GlitchMeanGap: -1, ProbeNoise: 1e-9})
	return sched, net
}

func TestPutGetRoundTrip(t *testing.T) {
	sched, net := testEnv()
	store := NewBlobStore(net, cloud.NorthUS, BlobOptions{})
	src := net.NewNode(cloud.NorthEU, cloud.Medium)
	dst := net.NewNode(cloud.NorthUS, cloud.Medium)
	var putDone, getDone bool
	store.Put(src, 10<<20, func() {
		putDone = true
		store.Get(dst, 10<<20, func() { getDone = true })
	})
	sched.RunFor(time.Hour)
	if !putDone || !getDone {
		t.Fatalf("put=%v get=%v", putDone, getDone)
	}
}

func TestRelayCompletes(t *testing.T) {
	sched, net := testEnv()
	store := NewBlobStore(net, cloud.NorthUS, BlobOptions{})
	src := net.NewNode(cloud.NorthEU, cloud.Medium)
	dst := net.NewNode(cloud.NorthUS, cloud.Medium)
	var res *RelayResult
	err := store.Relay(RelaySpec{Src: src, Dst: dst, Files: 20, FileBytes: 1 << 20, Parallel: 4},
		func(r RelayResult) { res = &r })
	if err != nil {
		t.Fatal(err)
	}
	sched.RunFor(12 * time.Hour)
	if res == nil {
		t.Fatal("relay did not finish")
	}
	if res.Files != 20 || res.Bytes != 20<<20 {
		t.Fatalf("result = %+v", res)
	}
	if res.Cost <= 0 {
		t.Fatal("relay should cost money")
	}
}

func TestRelaySlowerThanDirectFlow(t *testing.T) {
	// The two-phase staging path must be slower than one direct flow of
	// the same size — the core comparison of the baselines figure.
	sched, net := testEnv()
	store := NewBlobStore(net, cloud.NorthUS, BlobOptions{})
	src := net.NewNode(cloud.NorthEU, cloud.Medium)
	dst := net.NewNode(cloud.NorthUS, cloud.Medium)
	size := int64(100 << 20)

	var direct time.Duration
	start := sched.Now()
	net.StartFlow(src, dst, size, netsim.FlowOpts{}, func(f *netsim.Flow) {
		direct = sched.Now() - start
	})
	sched.RunFor(6 * time.Hour)
	if direct == 0 {
		t.Fatal("direct flow did not finish")
	}

	var relay *RelayResult
	if err := store.Relay(RelaySpec{Src: src, Dst: dst, Files: 10, FileBytes: size / 10, Parallel: 1},
		func(r RelayResult) { relay = &r }); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(24 * time.Hour)
	if relay == nil {
		t.Fatal("relay did not finish")
	}
	if relay.Duration <= direct {
		t.Fatalf("relay %v should be slower than direct %v", relay.Duration, direct)
	}
}

func TestRelayOverheadDominatesSmallFiles(t *testing.T) {
	// Same volume, 100x more files: per-request overhead must show.
	run := func(files int, fileBytes int64) time.Duration {
		sched, net := testEnv()
		store := NewBlobStore(net, cloud.NorthUS, BlobOptions{})
		src := net.NewNode(cloud.NorthEU, cloud.Medium)
		dst := net.NewNode(cloud.NorthUS, cloud.Medium)
		var res *RelayResult
		if err := store.Relay(RelaySpec{Src: src, Dst: dst, Files: files, FileBytes: fileBytes, Parallel: 2},
			func(r RelayResult) { res = &r }); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(48 * time.Hour)
		if res == nil {
			t.Fatal("relay did not finish")
		}
		return res.Duration
	}
	many := run(1000, 64<<10)
	few := run(10, 6400<<10)
	if many <= few {
		t.Fatalf("1000 small files (%v) should be slower than 10 large (%v)", many, few)
	}
}

func TestStageTime(t *testing.T) {
	sched, net := testEnv()
	store := NewBlobStore(net, cloud.NorthUS, BlobOptions{})
	src := net.NewNode(cloud.NorthEU, cloud.Small)
	var staged time.Duration
	store.StageTime(src, 100<<20, func(d time.Duration) { staged = d })
	sched.RunFor(6 * time.Hour)
	if staged <= 0 {
		t.Fatal("staging did not complete")
	}
	// Must include the request overhead and be slower than the raw link
	// (100 MB at <= 9 MB/s wide-area is >= 11s).
	if staged < 11*time.Second {
		t.Fatalf("staging %v implausibly fast", staged)
	}
}

func TestRelayValidation(t *testing.T) {
	_, net := testEnv()
	store := NewBlobStore(net, cloud.NorthUS, BlobOptions{})
	src := net.NewNode(cloud.NorthEU, cloud.Small)
	dst := net.NewNode(cloud.NorthUS, cloud.Small)
	if err := store.Relay(RelaySpec{Src: src, Dst: dst}, func(RelayResult) {}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBlobOptionsDefaults(t *testing.T) {
	opt := BlobOptions{}.withDefaults()
	if opt.Frontends != 4 || opt.RequestOverhead != 120*time.Millisecond ||
		opt.HTTPFactor != 0.7 || opt.PricePerGBOp != 0.01 {
		t.Fatalf("defaults = %+v", opt)
	}
}

func TestFrontendsRoundRobin(t *testing.T) {
	_, net := testEnv()
	store := NewBlobStore(net, cloud.NorthUS, BlobOptions{Frontends: 3})
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		seen[store.frontend().ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin visited %d frontends, want 3", len(seen))
	}
}
