// Command sagesim runs one geo-distributed streaming job on the simulated
// cloud and prints a run report: windows completed, latency percentiles,
// bytes moved, money spent, and the top keys of the global answer.
//
// Example:
//
//	sagesim -sources NEU,WEU,SUS -sink NUS -rate 1000 -window 30s \
//	        -minutes 10 -strategy envaware -budget 0.02
//
// -world-sites N swaps the built-in topology for a generated N-site world
// (sink defaults to the region-0 hub, sources to every other site), and
// -shards K runs the event core on K parallel shards — results are
// byte-identical for every K:
//
//	sagesim -world-sites 200 -world-regions 8 -shards 4 -rate 100 -minutes 5
//
// -jobs-file runs a multi-job roster under the admission scheduler: the JSON
// scenario carries a "jobs" array (name, tenant, priority, arrival plus the
// usual job fields) and an optional "scheduler" block (max_concurrent,
// policy fifo|fair|sjf, preempt):
//
//	sagesim -jobs-file examples/multijob/jobs.json
//
// -report-json additionally writes the multi-job report as the versioned
// api/v1 wire document — the same JSON the saged daemon serves at
// /api/v1/report.
//
// -cpuprofile/-memprofile capture pprof profiles of the run, mirroring the
// same flags on sagebench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/resilience"
	"sage/internal/scenario"
	"sage/internal/sched"
	"sage/internal/stats"
	"sage/internal/stream"
	"sage/internal/trace"
	"sage/internal/transfer"
	"sage/internal/workload"
)

var strategies = map[string]transfer.Strategy{
	"direct":    transfer.Direct,
	"parallel":  transfer.ParallelStatic,
	"envaware":  transfer.EnvAware,
	"widest":    transfer.WidestDynamic,
	"multipath": transfer.MultipathDynamic,
}

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "run a JSON scenario file instead of flag-built job")
		jobsFile     = flag.String("jobs-file", "", "run a multi-job JSON scenario (a scenario file with a jobs roster) under the admission scheduler")
		reportJSON   = flag.String("report-json", "", "with -jobs-file: also write the multi-job report as api/v1 JSON to this file (\"-\" for stdout)")

		sources   = flag.String("sources", "NEU,WEU,SUS", "comma-separated source sites")
		sink      = flag.String("sink", "NUS", "sink (meta-reducer) site")
		rate      = flag.Float64("rate", 1000, "events/second per source site")
		window    = flag.Duration("window", 30*time.Second, "tumbling window width")
		minutes   = flag.Float64("minutes", 10, "virtual minutes of stream")
		strategy  = flag.String("strategy", "envaware", "direct|parallel|envaware|widest|multipath")
		budget    = flag.Float64("budget", 0, "max $ per window transfer (0 = unconstrained)")
		raw       = flag.Bool("raw", false, "ship raw events instead of partials (centralized baseline)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 8, "worker VMs per site")
		tracePath = flag.String("trace", "", "write the run's event timeline as JSON Lines to this file")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "enable resilience: checkpoint operator state at this interval (0 = off)")

		shards       = flag.Int("shards", 1, "event-core shards (1 = sequential; any count gives byte-identical results)")
		worldSites   = flag.Int("world-sites", 0, "simulate a generated world with this many sites (0 = the built-in topology)")
		worldRegions = flag.Int("world-regions", 4, "regions of the generated world (used with -world-sites)")

		cpuprofile = flag.String("cpuprofile", "", "write CPU profile of the run to file")
		memprofile = flag.String("memprofile", "", "write heap profile of the run to file")
	)
	flag.Parse()
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
			os.Exit(1)
		}
	}()

	if *jobsFile != "" {
		runScenario(*jobsFile, true, *reportJSON)
		return
	}
	if *scenarioPath != "" {
		runScenario(*scenarioPath, false, *reportJSON)
		return
	}

	st, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "sagesim: unknown strategy %q\n", *strategy)
		os.Exit(1)
	}
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(1 << 20)
	}
	opt := core.Options{Seed: *seed, Trace: rec, Shards: *shards}
	if *worldSites > 0 {
		// Generated world: unless overridden, sink at the region-0 hub and
		// every other site streaming toward it.
		world := cloud.GenerateWorld(*worldSites, *worldRegions, *seed)
		opt.Topology = world
		if !explicit["sink"] {
			*sink = string(cloud.GeneratedHub(0))
		}
		if !explicit["sources"] {
			var ids []string
			for _, id := range world.SiteIDs() {
				if string(id) != *sink {
					ids = append(ids, string(id))
				}
			}
			*sources = strings.Join(ids, ",")
		}
	}
	e := core.NewEngine(core.WithOptions(opt))
	e.DeployEverywhere(cloud.Medium, *workers)
	e.Sched.RunFor(time.Minute) // monitor learning

	var specs []core.SourceSpec
	for _, s := range strings.Split(*sources, ",") {
		specs = append(specs, core.SourceSpec{
			Site: cloud.SiteID(strings.TrimSpace(s)),
			Rate: workload.ConstantRate(*rate),
		})
	}
	job := core.JobSpec{
		Sources:         specs,
		Sink:            cloud.SiteID(*sink),
		Window:          *window,
		Agg:             stream.Mean,
		ShipRaw:         *raw,
		Strategy:        st,
		Lanes:           3,
		Intr:            0.5,
		BudgetPerWindow: *budget,
	}
	if *ckptEvery > 0 {
		job.Resilience = &resilience.Config{CheckpointInterval: *ckptEvery}
	}
	rep, err := e.Run(job, time.Duration(*minutes*float64(time.Minute)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("job: %d sources -> %s, window %v, strategy %v, %s\n",
		len(specs), *sink, *window, st, map[bool]string{true: "raw events", false: "local partials"}[*raw])
	tb := stats.NewTable("run report", "metric", "value")
	tb.Add("windows completed", fmt.Sprintf("%d", rep.Windows))
	tb.Add("windows incomplete", fmt.Sprintf("%d", rep.Incomplete))
	tb.Add("events processed", fmt.Sprintf("%d", rep.TotalEvents))
	tb.Add("bytes moved over WAN", stats.FmtBytes(rep.TotalBytes))
	tb.Add("money spent", stats.FmtMoney(rep.TotalCost))
	tb.Add("latency p50", fmt.Sprintf("%.2fs", rep.LatencySummary.P50))
	tb.Add("latency p95", fmt.Sprintf("%.2fs", rep.LatencySummary.P95))
	tb.Add("latency p99", fmt.Sprintf("%.2fs", rep.LatencySummary.P99))
	if rm := rep.Resilience; rm != nil {
		tb.Add("checkpoints taken", fmt.Sprintf("%d", rm.Checkpoints))
		tb.Add("failures detected", fmt.Sprintf("%d", rm.Failures))
		tb.Add("recoveries", fmt.Sprintf("%d", rm.Recoveries))
		tb.Add("sink failovers", fmt.Sprintf("%d", rm.Failovers))
		tb.Add("duplicate bytes", stats.FmtBytes(rm.DuplicateBytes))
	}
	fmt.Println(tb.String())

	top := stats.NewTable("global answer: top 5 keys", "key", "value")
	for _, kv := range rep.Global.TopK(5) {
		top.Add(kv.Key, fmt.Sprintf("%.3f", kv.Value))
	}
	fmt.Println(top.String())

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rec.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", rec.Len(), *tracePath)
	}
}

// runScenario executes a declarative JSON scenario file. With requireJobs
// (the -jobs-file path) the file must carry a multi-job roster. A non-empty
// reportJSON additionally writes the multi-job report as the api/v1 wire
// document — the same shape the saged daemon serves at /api/v1/report.
func runScenario(path string, requireJobs bool, reportJSON string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
		os.Exit(1)
	}
	if requireJobs && len(sc.Jobs) == 0 {
		fmt.Fprintf(os.Stderr, "sagesim: -jobs-file %s has no jobs roster\n", path)
		os.Exit(1)
	}
	res, err := scenario.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %q\n", res.Name)
	switch {
	case res.Report != nil:
		tb := stats.NewTable("run report", "metric", "value")
		tb.Add("windows completed", fmt.Sprintf("%d", res.Report.Windows))
		tb.Add("windows incomplete", fmt.Sprintf("%d", res.Report.Incomplete))
		tb.Add("events processed", fmt.Sprintf("%d", res.Report.TotalEvents))
		tb.Add("bytes moved over WAN", stats.FmtBytes(res.Report.TotalBytes))
		tb.Add("money spent", stats.FmtMoney(res.Report.TotalCost))
		tb.Add("latency p95", fmt.Sprintf("%.2fs", res.Report.LatencySummary.P95))
		if rm := res.Report.Resilience; rm != nil {
			tb.Add("checkpoints taken", fmt.Sprintf("%d", rm.Checkpoints))
			tb.Add("failures detected", fmt.Sprintf("%d", rm.Failures))
			tb.Add("recoveries", fmt.Sprintf("%d", rm.Recoveries))
			tb.Add("sink failovers", fmt.Sprintf("%d", rm.Failovers))
			tb.Add("duplicate bytes", stats.FmtBytes(rm.DuplicateBytes))
		}
		fmt.Println(tb.String())
	case res.Gather != nil:
		tb := stats.NewTable("gather report", "metric", "value")
		tb.Add("makespan", stats.FmtDur(res.Gather.Makespan))
		tb.Add("bytes", stats.FmtBytes(res.Gather.TotalBytes))
		tb.Add("cost", stats.FmtMoney(res.Gather.TotalCost))
		fmt.Println(tb.String())
	case res.Multi != nil:
		m := res.Multi
		fmt.Println(m.Table(fmt.Sprintf("multi-job report: %d jobs, policy %s, %d slots",
			len(m.Jobs), m.Policy, m.MaxConcurrent)).String())
		tb := stats.NewTable("roster summary", "metric", "value")
		tb.Add("makespan", fmt.Sprintf("%.1fs", m.Makespan.Seconds()))
		tb.Add("completion p50", fmt.Sprintf("%.1fs", m.Completion.P50))
		tb.Add("completion p95", fmt.Sprintf("%.1fs", m.Completion.P95))
		tb.Add("events processed", fmt.Sprintf("%d", m.TotalEvents))
		tb.Add("bytes moved over WAN", stats.FmtBytes(m.TotalBytes))
		tb.Add("money spent", stats.FmtMoney(m.TotalCost))
		tb.Add("egress spend", stats.FmtMoney(m.TotalEgress))
		tb.Add("VM-seconds", fmt.Sprintf("%.0f", m.TotalVMSeconds))
		tb.Add("report fingerprint", fmt.Sprintf("%016x", m.Fingerprint()))
		fmt.Println(tb.String())
		if reportJSON != "" {
			if err := writeReportJSON(reportJSON, m); err != nil {
				fmt.Fprintf(os.Stderr, "sagesim: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if reportJSON != "" && res.Multi == nil {
		fmt.Fprintln(os.Stderr, "sagesim: -report-json needs a multi-job roster")
		os.Exit(1)
	}
}

// writeReportJSON encodes the multi-job report as the api/v1 wire document,
// to stdout for "-" or to the named file.
func writeReportJSON(path string, m *sched.MultiReport) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Wire())
}
