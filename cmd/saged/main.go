// Command saged is the SAGE control-plane daemon: it owns one simulated
// world and serves the versioned /api/v1 HTTP surface for submitting,
// inspecting, pausing, resuming and cancelling jobs while the simulation
// runs, plus /metrics (Prometheus) and an append-only JSONL audit log.
//
//	saged -addr :8080 -audit audit.jsonl
//	curl -X POST -d @examples/multijob/jobs.json localhost:8080/api/v1/jobs
//	curl localhost:8080/api/v1/jobs
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sage/internal/daemon"
)

func main() {
	addr := flag.String("addr", "localhost:7600", "HTTP listen address (use :0 for a random port)")
	audit := flag.String("audit", "", "append-only JSONL audit log path (empty: no audit)")
	speed := flag.Float64("speed", 0, "virtual seconds advanced per wall second (0: unlimited)")
	quantum := flag.Duration("quantum", time.Second, "virtual-time slice between API safe points")
	paused := flag.Bool("paused", false, "start with the virtual clock paused")
	flag.Parse()

	opt := daemon.Options{Speed: *speed, Quantum: *quantum, StartPaused: *paused}
	var auditFile *os.File
	if *audit != "" {
		f, err := os.OpenFile(*audit, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saged: %v\n", err)
			os.Exit(1)
		}
		auditFile = f
		opt.Audit = f
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saged: %v\n", err)
		os.Exit(1)
	}
	d := daemon.New(opt)
	srv := &http.Server{Handler: d.Handler()}
	fmt.Printf("saged: listening on http://%s\n", ln.Addr())

	errC := make(chan error, 1)
	go func() { errC <- srv.Serve(ln) }()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigC:
		fmt.Printf("saged: %v, shutting down\n", sig)
	case err := <-errC:
		fmt.Fprintf(os.Stderr, "saged: %v\n", err)
	}
	srv.Close()
	d.Stop()
	if auditFile != nil {
		auditFile.Close()
	}
}
