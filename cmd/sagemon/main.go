// Command sagemon runs the monitoring agent against a simulated
// geo-distributed cloud and prints the live inter-datacenter throughput map
// at intervals — the operator's view of the environment (figure F1,
// interactively).
//
// Example:
//
//	sagemon -hours 2 -every 30m -seed 3
package main

import (
	"flag"
	"fmt"
	"time"

	"sage/internal/core"
	"sage/internal/stats"
)

func main() {
	var (
		hours = flag.Float64("hours", 1, "virtual hours to simulate")
		every = flag.Duration("every", 30*time.Minute, "map print interval (virtual)")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	e := core.NewEngine(core.Options{Seed: *seed})
	total := time.Duration(*hours * float64(time.Hour))
	for elapsed := time.Duration(0); elapsed < total; elapsed += *every {
		e.Sched.RunFor(*every)
		fmt.Printf("t=%v\n", e.Sched.Now())
		printMap(e)
	}
}

func printMap(e *core.Engine) {
	ids := e.Net.Topology().SiteIDs()
	tb := stats.NewTable("inter-datacenter throughput (MB/s): monitored | ground truth", "from\\to")
	for _, to := range ids {
		tb.Headers = append(tb.Headers, string(to))
	}
	for _, from := range ids {
		row := []string{string(from)}
		for _, to := range ids {
			if from == to {
				row = append(row, "-")
				continue
			}
			mean, _ := e.Monitor.Estimate(from, to)
			row = append(row, fmt.Sprintf("%.1f|%.1f", mean, e.Net.CapacityNow(from, to)))
		}
		tb.Add(row...)
	}
	fmt.Println(tb.String())
}
