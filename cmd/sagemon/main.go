// Command sagemon runs the monitoring agent against a simulated
// geo-distributed cloud and prints the live inter-datacenter throughput map
// at intervals — the operator's view of the environment (figure F1,
// interactively).
//
// Example:
//
//	sagemon -hours 2 -every 30m -seed 3
//	sagemon -hours 1 -metrics        # append the live metrics registry
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sage/internal/core"
	"sage/internal/obs"
	"sage/internal/stats"
)

func main() {
	var (
		hours   = flag.Float64("hours", 1, "virtual hours to simulate")
		every   = flag.Duration("every", 30*time.Minute, "map print interval (virtual)")
		seed    = flag.Uint64("seed", 1, "random seed")
		metrics = flag.Bool("metrics", false, "print the live metrics registry (Prometheus text) with each map")
	)
	flag.Parse()

	total := time.Duration(*hours * float64(time.Hour))
	if err := runMonitor(*seed, total, *every, *metrics, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sagemon:", err)
		os.Exit(1)
	}
}

// runMonitor drives the simulation and writes the periodic throughput map —
// and, when metrics is set, the live metric registry — to w.
func runMonitor(seed uint64, total, every time.Duration, metrics bool, w io.Writer) error {
	var ob *obs.Observer
	if metrics {
		ob = obs.NewObserver()
	}
	e := core.NewEngine(core.WithSeed(seed), core.WithObservability(ob))
	for elapsed := time.Duration(0); elapsed < total; elapsed += every {
		e.Sched.RunFor(every)
		fmt.Fprintf(w, "t=%v\n", e.Sched.Now())
		fmt.Fprintln(w, mapTable(e).String())
		if metrics {
			fmt.Fprintln(w, "-- live metrics --")
			if err := ob.Metrics.WritePrometheus(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func mapTable(e *core.Engine) *stats.Table {
	ids := e.Net.Topology().SiteIDs()
	tb := stats.NewTable("inter-datacenter throughput (MB/s): monitored | ground truth", "from\\to")
	for _, to := range ids {
		tb.Headers = append(tb.Headers, string(to))
	}
	for _, from := range ids {
		row := []string{string(from)}
		for _, to := range ids {
			if from == to {
				row = append(row, "-")
				continue
			}
			mean, _ := e.Monitor.Estimate(from, to)
			row = append(row, fmt.Sprintf("%.1f|%.1f", mean, e.Net.CapacityNow(from, to)))
		}
		tb.Add(row...)
	}
	return tb
}
