// Command sagemon runs the monitoring agent against a simulated
// geo-distributed cloud and prints the live inter-datacenter throughput map
// at intervals — the operator's view of the environment (figure F1,
// interactively).
//
// Example:
//
//	sagemon -hours 2 -every 30m -seed 3
//	sagemon -hours 1 -metrics        # append the live metrics registry
//	sagemon -hours 1 -serve :9090    # and expose GET /metrics while running
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sage/internal/core"
	"sage/internal/obs"
	"sage/internal/stats"
)

func main() {
	var (
		hours   = flag.Float64("hours", 1, "virtual hours to simulate")
		every   = flag.Duration("every", 30*time.Minute, "map print interval (virtual)")
		seed    = flag.Uint64("seed", 1, "random seed")
		metrics = flag.Bool("metrics", false, "print the live metrics registry (Prometheus text) with each map")
		serve   = flag.String("serve", "", "serve GET /metrics (Prometheus text) at this address while the simulation runs, then until interrupted")
	)
	flag.Parse()

	var ob *obs.Observer
	if *metrics || *serve != "" {
		ob = obs.NewObserver()
	}
	if *serve != "" {
		// The registry is safe for concurrent readers, so the live scrape
		// endpoint runs alongside the simulation — the same handler saged
		// mounts at /metrics.
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sagemon:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", ob.Metrics.Handler())
		go http.Serve(ln, mux)
		fmt.Printf("sagemon: serving metrics at http://%s/metrics\n", ln.Addr())
	}

	total := time.Duration(*hours * float64(time.Hour))
	if err := runMonitor(*seed, total, *every, ob, *metrics, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sagemon:", err)
		os.Exit(1)
	}
	if *serve != "" {
		fmt.Println("sagemon: simulation finished; still serving metrics (interrupt to exit)")
		sigC := make(chan os.Signal, 1)
		signal.Notify(sigC, os.Interrupt)
		<-sigC
	}
}

// runMonitor drives the simulation and writes the periodic throughput map —
// and, when printMetrics is set, the live metric registry — to w. ob may be
// nil when no metrics consumer is attached.
func runMonitor(seed uint64, total, every time.Duration, ob *obs.Observer, printMetrics bool, w io.Writer) error {
	e := core.NewEngine(core.WithSeed(seed), core.WithObservability(ob))
	for elapsed := time.Duration(0); elapsed < total; elapsed += every {
		e.Sched.RunFor(every)
		fmt.Fprintf(w, "t=%v\n", e.Sched.Now())
		fmt.Fprintln(w, mapTable(e).String())
		if printMetrics {
			fmt.Fprintln(w, "-- live metrics --")
			if err := ob.Metrics.WritePrometheus(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func mapTable(e *core.Engine) *stats.Table {
	ids := e.Net.Topology().SiteIDs()
	tb := stats.NewTable("inter-datacenter throughput (MB/s): monitored | ground truth", "from\\to")
	for _, to := range ids {
		tb.Headers = append(tb.Headers, string(to))
	}
	for _, from := range ids {
		row := []string{string(from)}
		for _, to := range ids {
			if from == to {
				row = append(row, "-")
				continue
			}
			mean, _ := e.Monitor.Estimate(from, to)
			row = append(row, fmt.Sprintf("%.1f|%.1f", mean, e.Net.CapacityNow(from, to)))
		}
		tb.Add(row...)
	}
	return tb
}
