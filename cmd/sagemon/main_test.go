package main

import (
	"strings"
	"testing"
	"time"

	"sage/internal/obs"
)

func TestRunMonitorPrintsMapAndMetrics(t *testing.T) {
	var b strings.Builder
	if err := runMonitor(3, 20*time.Minute, 10*time.Minute, obs.NewObserver(), true, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "t=") != 2 {
		t.Fatalf("expected 2 map intervals, got:\n%s", out)
	}
	if !strings.Contains(out, "inter-datacenter throughput") {
		t.Fatal("missing throughput map")
	}
	// The monitor probed during the warm-up, so the live registry carries
	// probe counts and per-link estimates.
	for _, want := range []string{
		"-- live metrics --",
		"# TYPE sage_probes_total counter",
		"sage_link_estimate_mbps{",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMonitorWithoutMetricsIsQuiet(t *testing.T) {
	var b strings.Builder
	if err := runMonitor(3, 10*time.Minute, 10*time.Minute, nil, false, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "live metrics") {
		t.Fatal("metrics printed without the flag")
	}
}
