package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	apiv1 "sage/api/v1"
)

func TestExportTimelineIsLoadableChromeTrace(t *testing.T) {
	var b strings.Builder
	if err := exportTimeline(1, 3*time.Minute, &b, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"window_close", "transfer", "window"} {
		if !names[want] {
			t.Fatalf("timeline missing %q events; have %v", want, names)
		}
	}
}

// TestExportSpansIsAPIv1Document pins the -spans output to the versioned
// wire schema the saged daemon serves at /api/v1/timeline.
func TestExportSpansIsAPIv1Document(t *testing.T) {
	var b strings.Builder
	if err := exportTimeline(1, 3*time.Minute, nil, &b); err != nil {
		t.Fatal(err)
	}
	var doc apiv1.TimelineDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("spans export is not a valid api/v1 timeline document: %v", err)
	}
	if len(doc.Spans) == 0 {
		t.Fatal("no spans exported")
	}
	phases := map[string]bool{}
	for _, s := range doc.Spans {
		phases[s.Phase] = true
	}
	for _, want := range []string{"window_close", "transfer", "window"} {
		if !phases[want] {
			t.Fatalf("spans missing %q; have %v", want, phases)
		}
	}
}

func TestExportTimelineDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := exportTimeline(7, 2*time.Minute, &b, nil); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("same seed produced different timelines")
	}
}
