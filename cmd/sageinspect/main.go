// Command sageinspect runs Introspection-as-a-Service against a simulated
// cloud: after a monitoring warm-up it prints per-link service-level
// profiles (with stability grades), attainment against a target throughput,
// and a catalog of what standard transfers would cost right now.
//
// Example:
//
//	sageinspect -hours 4 -target 8 -ref 1073741824
package main

import (
	"flag"
	"fmt"
	"time"

	"sage/internal/core"
	"sage/internal/introspect"
	"sage/internal/stats"
)

func main() {
	var (
		hours  = flag.Float64("hours", 2, "virtual hours of monitoring before the report")
		target = flag.Float64("target", 8, "target MB/s for the attainment column")
		ref    = flag.Int64("ref", 1<<30, "reference dataset size for the cost catalog (bytes)")
		lanes  = flag.Int("lanes", 4, "parallel lane count for the catalog's parallel variant")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	e := core.NewEngine(core.Options{Seed: *seed})
	e.Sched.RunFor(time.Duration(*hours * float64(time.Hour)))

	topo := e.Net.Topology()
	profiles := introspect.Profiles(e.Monitor, topo)
	fmt.Println(introspect.ProfilesTable(profiles).String())

	at := stats.NewTable(fmt.Sprintf("attainment of %.1f MB/s", *target), "link", "fraction of samples meeting target")
	for _, p := range profiles {
		if frac, ok := introspect.Attainment(e.Monitor, p.From, p.To, *target); ok {
			at.Add(fmt.Sprintf("%s>%s", p.From, p.To), fmt.Sprintf("%.0f%%", frac*100))
		}
	}
	fmt.Println(at.String())

	par := e.Params
	par.Intr = 1
	fmt.Println(introspect.CatalogTable(introspect.Catalog(e.Monitor, topo, par, *ref, *lanes)).String())
}
