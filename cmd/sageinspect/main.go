// Command sageinspect runs Introspection-as-a-Service against a simulated
// cloud: after a monitoring warm-up it prints per-link service-level
// profiles (with stability grades), attainment against a target throughput,
// and a catalog of what standard transfers would cost right now.
//
// With -timeline it additionally runs a representative streaming job with
// the observability layer attached and exports the phase timeline as Chrome
// trace_event JSON — load the file in chrome://tracing or Perfetto. -spans
// writes the same recording as the api/v1 span document the saged daemon
// serves at /api/v1/timeline.
//
// Example:
//
//	sageinspect -hours 4 -target 8 -ref 1073741824
//	sageinspect -hours 1 -timeline trace.json -spans spans.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/introspect"
	"sage/internal/obs"
	"sage/internal/stats"
	"sage/internal/stream"
	"sage/internal/transfer"
	"sage/internal/workload"
)

func main() {
	var (
		hours    = flag.Float64("hours", 2, "virtual hours of monitoring before the report")
		target   = flag.Float64("target", 8, "target MB/s for the attainment column")
		ref      = flag.Int64("ref", 1<<30, "reference dataset size for the cost catalog (bytes)")
		lanes    = flag.Int("lanes", 4, "parallel lane count for the catalog's parallel variant")
		seed     = flag.Uint64("seed", 1, "random seed")
		timeline = flag.String("timeline", "", "run a demo job and write its Chrome trace_event timeline to this file")
		spans    = flag.String("spans", "", "run a demo job and write its timeline as the api/v1 span JSON document to this file")
	)
	flag.Parse()

	e := core.NewEngine(core.WithSeed(*seed))
	e.Sched.RunFor(time.Duration(*hours * float64(time.Hour)))

	topo := e.Net.Topology()
	profiles := introspect.Profiles(e.Monitor, topo)
	fmt.Println(introspect.ProfilesTable(profiles).String())

	at := stats.NewTable(fmt.Sprintf("attainment of %.1f MB/s", *target), "link", "fraction of samples meeting target")
	for _, p := range profiles {
		if frac, ok := introspect.Attainment(e.Monitor, p.From, p.To, *target); ok {
			at.Add(fmt.Sprintf("%s>%s", p.From, p.To), fmt.Sprintf("%.0f%%", frac*100))
		}
	}
	fmt.Println(at.String())

	par := e.Params
	par.Intr = 1
	fmt.Println(introspect.CatalogTable(introspect.Catalog(e.Monitor, topo, par, *ref, *lanes)).String())

	if *timeline != "" || *spans != "" {
		chromeF := createOrDie(*timeline)
		spansF := createOrDie(*spans)
		// A nil *os.File must stay a nil io.Writer, not a typed-nil interface.
		var chromeW, spansW io.Writer
		if chromeF != nil {
			chromeW = chromeF
		}
		if spansF != nil {
			spansW = spansF
		}
		if err := exportTimeline(*seed, 5*time.Minute, chromeW, spansW); err != nil {
			fmt.Fprintln(os.Stderr, "sageinspect:", err)
			os.Exit(1)
		}
		closeOrDie(chromeF, *timeline)
		closeOrDie(spansF, *spans)
	}
}

// closeOrDie flushes one export file and reports it.
func closeOrDie(f *os.File, path string) {
	if f == nil {
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sageinspect:", err)
		os.Exit(1)
	}
	fmt.Printf("timeline written to %s\n", path)
}

// createOrDie opens path for writing, or returns nil for an empty path.
func createOrDie(path string) *os.File {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sageinspect:", err)
		os.Exit(1)
	}
	return f
}

// exportTimeline runs a representative three-source streaming job with the
// observability layer attached and writes the recorded phase spans as Chrome
// trace_event JSON (chrome) and/or the api/v1 span document (spans) — the
// latter through the same codec the saged /api/v1/timeline endpoint uses.
// Either writer may be nil.
func exportTimeline(seed uint64, dur time.Duration, chrome, spans io.Writer) error {
	ob := obs.NewObserver()
	e := core.NewEngine(core.WithSeed(seed), core.WithObservability(ob))
	e.DeployEverywhere(cloud.Medium, 8)
	job := core.JobSpec{
		Sources: []core.SourceSpec{
			{Site: cloud.NorthEU, Rate: workload.ConstantRate(200)},
			{Site: cloud.WestEU, Rate: workload.ConstantRate(200)},
			{Site: cloud.SouthUS, Rate: workload.ConstantRate(200)},
		},
		Sink:     cloud.NorthUS,
		Window:   30 * time.Second,
		Agg:      stream.Mean,
		Strategy: transfer.EnvAware,
		Lanes:    2,
	}
	if _, err := e.Run(job, dur); err != nil {
		return err
	}
	if chrome != nil {
		if err := ob.Timeline.WriteChromeTrace(chrome); err != nil {
			return err
		}
	}
	if spans != nil {
		if err := ob.Timeline.WriteJSON(spans); err != nil {
			return err
		}
	}
	return nil
}
