// Command sagebench regenerates the SAGE evaluation: every table and figure
// of the reconstructed experiment suite (see DESIGN.md). Without flags it
// runs everything; -exp selects one experiment, -quick shrinks sizes, -csv
// emits machine-readable output, -list shows the index.
//
// Examples:
//
//	sagebench -list
//	sagebench -exp 3
//	sagebench -quick -seed 7
//	sagebench -exp 9 -csv > f9.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sage/internal/bench"
)

func main() {
	var (
		expID = flag.Int("exp", 0, "experiment ID to run (0 = all)")
		quick = flag.Bool("quick", false, "reduced sizes/durations")
		seed  = flag.Uint64("seed", 1, "random seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-4s %-16s %-6s %s\n", "ID", "NAME", "FIG", "DESCRIPTION")
		for _, e := range bench.All() {
			fmt.Printf("%-4d %-16s %-6s %s\n", e.ID, e.Name, e.Figure, e.Desc)
		}
		return
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick}
	run := func(e bench.Experiment) {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %d/%s (%s)...\n", e.ID, e.Name, e.Figure)
		tables := e.Run(cfg)
		for _, tb := range tables {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		fmt.Fprintf(os.Stderr, "done %d/%s in %v\n", e.ID, e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *expID != 0 {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sagebench: unknown experiment %d (try -list)\n", *expID)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
	}
}
