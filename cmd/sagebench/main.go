// Command sagebench regenerates the SAGE evaluation: every table and figure
// of the reconstructed experiment suite (see DESIGN.md). Without flags it
// runs everything; -exp selects one experiment, -quick shrinks sizes, -csv
// emits machine-readable output, -list shows the index. -perf skips the
// tables and instead measures the netsim allocator and streaming data-plane
// micro-benchmarks, writing the machine-readable baselines used for
// regression tracking.
// -cpuprofile/-memprofile capture pprof profiles of whatever mode runs.
//
// Examples:
//
//	sagebench -list
//	sagebench -exp 3
//	sagebench -quick -seed 7
//	sagebench -exp 9 -csv > f9.csv
//	sagebench -perf                       # rewrites every BENCH_*.json baseline (netsim, stream, obs, scale, route, transfer, sched)
//	sagebench -exp 20 -shards 4           # scale experiment on a 4-shard core
//	sagebench -quick -cpuprofile cpu.out  # profile the whole quick suite
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"sage/internal/bench"
)

func main() {
	var (
		expID           = flag.Int("exp", 0, "experiment ID to run (0 = all)")
		quick           = flag.Bool("quick", false, "reduced sizes/durations")
		seed            = flag.Uint64("seed", 1, "random seed")
		csv             = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list            = flag.Bool("list", false, "list experiments and exit")
		perf            = flag.Bool("perf", false, "run perf baselines and write -perf-out / -perf-stream-out / -perf-obs-out")
		perfOut         = flag.String("perf-out", "BENCH_netsim.json", "output path for the netsim -perf baseline")
		perfStreamOut   = flag.String("perf-stream-out", "BENCH_stream.json", "output path for the stream -perf baseline")
		perfObsOut      = flag.String("perf-obs-out", "BENCH_obs.json", "output path for the observability -perf baseline")
		perfScaleOut    = flag.String("perf-scale-out", "BENCH_scale.json", "output path for the shard-scaling -perf baseline")
		perfRouteOut    = flag.String("perf-route-out", "BENCH_route.json", "output path for the route-planner -perf baseline")
		perfTransferOut = flag.String("perf-transfer-out", "BENCH_transfer.json", "output path for the transfer-executor -perf baseline")
		perfSchedOut    = flag.String("perf-sched-out", "BENCH_sched.json", "output path for the multi-job scheduler -perf baseline")
		shards          = flag.Int("shards", 0, "event-core shards for every experiment (0 = 1 or $SAGE_SHARDS; results are byte-identical for any count)")
		worldSites      = flag.Int("world-sites", 0, "override the generated-world site count of the scale experiment")
		worldRegions    = flag.Int("world-regions", 0, "override the generated-world region count of the scale experiment")
		cpuprofile      = flag.String("cpuprofile", "", "write CPU profile to file")
		memprofile      = flag.String("memprofile", "", "write heap profile to file")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-4s %-16s %-6s %s\n", "ID", "NAME", "FIG", "DESCRIPTION")
		for _, e := range bench.All() {
			fmt.Printf("%-4d %-16s %-6s %s\n", e.ID, e.Name, e.Figure, e.Desc)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
	}()

	if *perf {
		fmt.Fprintln(os.Stderr, "measuring netsim perf baseline (takes ~15s)...")
		p := bench.RunPerfBaseline()
		if err := os.WriteFile(*perfOut, p.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for _, n := range []int{10, 100, 1000} {
			key := fmt.Sprintf("FlowChurn/flows=%d", n)
			r := p.Benchmarks[key]
			fmt.Fprintf(os.Stderr, "%-26s %12.0f ns/op %6d allocs/op\n", key, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfOut)

		fmt.Fprintln(os.Stderr, "measuring stream perf baseline...")
		s := bench.RunStreamPerfBaseline()
		if err := os.WriteFile(*perfStreamOut, s.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for _, key := range []string{
			"SensorGen/keys=1000", "WindowAggDense/keys=1000",
			"WindowAggMap/keys=1000", "StreamPipeline/keys=1000",
			"SlidingAdvanceEmpty", "WindowJoinAdvanceEmpty",
		} {
			r := s.Benchmarks[key]
			fmt.Fprintf(os.Stderr, "%-26s %12.0f ns/op %6d allocs/op\n", key, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfStreamOut)

		fmt.Fprintln(os.Stderr, "measuring observability perf baseline...")
		o := bench.RunObsPerfBaseline()
		if err := os.WriteFile(*perfObsOut, o.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for _, key := range []string{
			"CounterInc", "GaugeSet", "HistogramObserve",
			"DisabledCounterInc", "TimelineRecord",
		} {
			r := o.Benchmarks[key]
			fmt.Fprintf(os.Stderr, "%-26s %12.1f ns/op %6d allocs/op\n", key, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "exp19 quick: %.1f ms off, %.1f ms on (%+.2f%%)\n",
			o.Exp19RecoveryMillisOff, o.Exp19RecoveryMillisOn, o.Exp19ObsOverheadPct)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfObsOut)

		fmt.Fprintln(os.Stderr, "measuring shard-scaling baseline (120-site world at 1/2/4/8 shards)...")
		sc := bench.RunScalePerfBaseline()
		if err := os.WriteFile(*perfScaleOut, sc.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		mk := sc.Benchmarks["MillionKeyPipeline"]
		fmt.Fprintf(os.Stderr, "%-26s %12.0f ns/op %6d allocs/op\n", "MillionKeyPipeline", mk.NsPerOp, mk.AllocsPerOp)
		for _, r := range sc.Runs {
			fmt.Fprintf(os.Stderr, "scale shards=%d: %8.1f ms wall, %d stage rounds\n", r.Shards, r.Millis, r.StageRounds)
		}
		fmt.Fprintf(os.Stderr, "speedup at 4 shards: %.2fx on %d cores (GOMAXPROCS=%d)\n",
			sc.SpeedupAt4Shards, sc.Cores, sc.GOMAXPROCS)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfScaleOut)

		fmt.Fprintln(os.Stderr, "measuring route-planner baseline (50/200/500-site worlds)...")
		rt := bench.RunRoutePerfBaseline()
		if err := os.WriteFile(*perfRouteOut, rt.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for _, key := range []string{
			"WidestPath/sites=500", "FromScratchReplan/sites=500",
			"ReplanChurn/sites=500/dirty=10", "ReplanRepair/sites=500",
		} {
			r := rt.Benchmarks[key]
			fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %6d allocs/op\n", key, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "replan speedup at 10 dirty edges: %.0fx over from-scratch\n", rt.ReplanSpeedup10At500)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfRouteOut)

		fmt.Fprintln(os.Stderr, "measuring transfer-executor baseline (100/1k/10k-chunk transfers)...")
		tr := bench.RunTransferPerfBaseline()
		if err := os.WriteFile(*perfTransferOut, tr.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for _, key := range []string{
			"TransferDirect/chunks=10000", "TransferEnvAware/chunks=10000",
			"TransferMultipathDynamic/chunks=10000", "TransferFailoverChurn/chunks=1000",
		} {
			r := tr.Benchmarks[key]
			fmt.Fprintf(os.Stderr, "%-38s %12.0f ns/op %6d allocs/op\n", key, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "alloc reduction vs pre-rewrite executor at 10k chunks: %.0fx (speedup %.1fx)\n",
			tr.AllocReduction10k, tr.Speedup10k)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfTransferOut)

		fmt.Fprintln(os.Stderr, "measuring multi-job scheduler baseline (dispatch + contention run)...")
		sc2 := bench.RunSchedPerfBaseline()
		if err := os.WriteFile(*perfSchedOut, sc2.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sagebench: %v\n", err)
			os.Exit(1)
		}
		for key, r := range sc2.Benchmarks {
			fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %6d allocs/op\n", key, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "contention run: %d jobs, %d events, %.0f events/sec/core\n",
			sc2.ContentionJobs, sc2.Events, sc2.EventsPerSecCore)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfSchedOut)
		return
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick,
		Shards: *shards, WorldSites: *worldSites, WorldRegions: *worldRegions}
	run := func(e bench.Experiment) {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %d/%s (%s)...\n", e.ID, e.Name, e.Figure)
		tables := e.Run(cfg)
		for _, tb := range tables {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		fmt.Fprintf(os.Stderr, "done %d/%s in %v\n", e.ID, e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *expID != 0 {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sagebench: unknown experiment %d (try -list)\n", *expID)
			os.Exit(1)
		}
		run(e)
		return
	}
	// Run-all mode fans experiments across cores (bench.RunAll) and prints
	// results in ID order, so stdout is byte-identical to a serial run.
	start := time.Now()
	results := bench.RunAll(cfg)
	for _, res := range results {
		e := res.Experiment
		fmt.Fprintf(os.Stderr, "ran %d/%s (%s) in %v\n", e.ID, e.Name, e.Figure, res.Elapsed.Round(time.Millisecond))
		for _, tb := range res.Tables {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
	}
	fmt.Fprintf(os.Stderr, "suite done in %v\n", time.Since(start).Round(time.Millisecond))
}
