package apiv1

// Audit wire types: the schema of saged's append-only JSONL audit log.
// Every line of the log is one AuditRecord; the audit-schema test in
// internal/daemon decodes the real log through this type, so the writer
// and this schema cannot drift.

// Audit record kinds.
const (
	// AuditAPI records an API mutation (submit, cancel, pause, resume,
	// clock actions, shutdown).
	AuditAPI = "api"
	// AuditTransfer records one planner decision and its outcome: the
	// predicted throughput/time/cost frozen at dispatch against the
	// actual transfer result.
	AuditTransfer = "transfer"
	// AuditPlanner records incremental route-planner activity since the
	// previous planner record (diffed PlannerStats counters).
	AuditPlanner = "planner"
)

// AuditRecord is one line of the JSONL audit log.
type AuditRecord struct {
	// T is the virtual time of the event.
	T Duration `json:"t"`
	// Wall is the wall-clock time the line was written, RFC3339Nano.
	Wall string `json:"wall"`
	// Kind is AuditAPI, AuditTransfer or AuditPlanner.
	Kind string `json:"kind"`
	// Action/Job/Detail describe an API mutation (Kind == AuditAPI).
	Action string `json:"action,omitempty"`
	Job    string `json:"job,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Transfer carries a planner decision record (Kind == AuditTransfer).
	Transfer *TransferAudit `json:"transfer,omitempty"`
	// Planner carries a route-planner counter diff (Kind == AuditPlanner).
	Planner *PlannerAudit `json:"planner,omitempty"`
}

// TransferAudit is one transfer's predicted-vs-actual ledger entry: the
// route and sizing the planner chose, what the model predicted for it, and
// what the network actually delivered. A later optimizer reads these rows
// to refit the cost model against outcomes.
type TransferAudit struct {
	JobID    int    `json:"job_id"`
	From     string `json:"from"`
	To       string `json:"to"`
	Strategy string `json:"strategy"`
	Bytes    int64  `json:"bytes"`
	Lanes    int    `json:"lanes"`
	// Predicted* are frozen at dispatch from the monitor estimate and the
	// cost/time model; Actual* come from the transfer result.
	PredictedMBps float64  `json:"predicted_mbps"`
	PredictedTime Duration `json:"predicted_time"`
	PredictedCost float64  `json:"predicted_cost"`
	ActualMBps    float64  `json:"actual_mbps"`
	ActualTime    Duration `json:"actual_time"`
	ActualCost    float64  `json:"actual_cost"`
	NodesUsed     int      `json:"nodes_used"`
	Replans       int      `json:"replans,omitempty"`
}

// PlannerAudit is the route-planner activity since the previous planner
// record: a diff of the cumulative route.PlannerStats counters.
type PlannerAudit struct {
	Replans        uint64 `json:"replans"`
	CacheHits      uint64 `json:"cache_hits"`
	Repairs        uint64 `json:"repairs"`
	FullRecomputes uint64 `json:"full_recomputes"`
	DirtyEdges     uint64 `json:"dirty_edges"`
	ChangedEdges   uint64 `json:"changed_edges"`
}
