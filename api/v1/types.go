// Package apiv1 is SAGE's versioned public wire surface: the JSON types a
// client exchanges with the saged control plane and the sagesim CLI. Every
// codec in the repo — `sagesim -scenario/-jobs-file`, the scenario package,
// and the daemon's /api/v1 endpoints — encodes and decodes through the types
// in this package, so the declarative file format and the HTTP API cannot
// drift apart. The package is deliberately dependency-light: wire types and
// their codecs only; building and running worlds from a Roster lives in
// internal/scenario.
//
// Versioning contract: fields may be added (decoders must tolerate absent
// fields), never renamed or retyped. A breaking change mints api/v2.
package apiv1

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Duration wraps time.Duration with human-readable JSON ("30s", "5m").
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("apiv1: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Roster is a complete run description: the world (topology, weather,
// deployments), the workload (exactly one of a single job, a gather, or a
// multi-job roster), and timed fault injections. It is the document
// `sagesim -scenario/-jobs-file` reads and `POST /api/v1/jobs` accepts.
type Roster struct {
	// Name labels the run in reports.
	Name string `json:"name"`
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Topology selects the cloud map: "default" (6 EU/US sites) or
	// "world" (9 sites incl. Asia and Brazil).
	Topology string `json:"topology,omitempty"`
	// Weather selects link variability: "default", "calm" (no glitches)
	// or "rough" (frequent deep glitches).
	Weather string `json:"weather,omitempty"`
	// CrossTraffic enables background tenant flows with the given mean
	// inter-arrival gap per link (e.g. "30s"). Empty disables.
	CrossTraffic Duration `json:"cross_traffic,omitempty"`
	// Workers deploys VMs: class name -> count per site (default
	// {"Medium": 8}).
	Workers map[string]int `json:"workers,omitempty"`
	// Job describes the streaming job (exactly one of Job/Gather/Jobs).
	Job *JobConfig `json:"job,omitempty"`
	// Gather describes a file-collection run.
	Gather *GatherConfig `json:"gather,omitempty"`
	// Jobs describes a multi-job roster run under the admission scheduler:
	// every job shares one world and contends for links and VM slots.
	Jobs []MultiJobConfig `json:"jobs,omitempty"`
	// Scheduler configures admission for a Jobs roster.
	Scheduler *SchedulerConfig `json:"scheduler,omitempty"`
	// Injections are timed faults.
	Injections []Injection `json:"injections,omitempty"`
	// Warmup is monitoring time before the workload (default 1m).
	Warmup Duration `json:"warmup,omitempty"`
}

// JobConfig mirrors core.JobSpec declaratively.
type JobConfig struct {
	Sources  []SourceConfig `json:"sources"`
	Sink     string         `json:"sink"`
	Window   Duration       `json:"window"`
	Agg      string         `json:"agg"`      // count|sum|mean|min|max
	Strategy string         `json:"strategy"` // direct|parallel|envaware|widest|multipath
	Lanes    int            `json:"lanes,omitempty"`
	Intr     float64        `json:"intrusiveness,omitempty"`
	ShipRaw  bool           `json:"ship_raw,omitempty"`
	Budget   float64        `json:"budget_per_window,omitempty"`
	Deadline Duration       `json:"deadline_per_window,omitempty"`
	Duration Duration       `json:"duration"`
	// CheckpointInterval enables the resilience subsystem: operator state
	// checkpoints at this virtual-time interval, site failures are detected
	// by heartbeat and recovered by replay/failover. Empty disables.
	CheckpointInterval Duration `json:"checkpoint_interval,omitempty"`
}

// MultiJobConfig is one roster entry: a streaming job plus the scheduling
// metadata the admission queue orders it by.
type MultiJobConfig struct {
	JobConfig
	// Name labels the job in the multi-job report (default "jobN").
	Name string `json:"name,omitempty"`
	// Tenant groups jobs for fair-share accounting (default: the name).
	Tenant string `json:"tenant,omitempty"`
	// Priority orders admission classes; with scheduler.preempt a running
	// high-priority job pauses lower-priority jobs' transfers.
	Priority int `json:"priority,omitempty"`
	// Arrival is the submission instant, offset from scheduler start.
	Arrival Duration `json:"arrival,omitempty"`
}

// SchedulerConfig mirrors sched.Options declaratively.
type SchedulerConfig struct {
	MaxConcurrent int      `json:"max_concurrent,omitempty"`
	Policy        string   `json:"policy,omitempty"` // fifo|fair|sjf
	Tick          Duration `json:"tick,omitempty"`
	Preempt       bool     `json:"preempt,omitempty"`
}

// SourceConfig declares one event source.
type SourceConfig struct {
	Site string  `json:"site"`
	Rate float64 `json:"rate"` // events/second
	Keys int     `json:"keys,omitempty"`
	Skew float64 `json:"skew,omitempty"`
	// DiurnalAmplitude, when > 0, modulates the rate over a 24h period.
	DiurnalAmplitude float64 `json:"diurnal_amplitude,omitempty"`
}

// GatherConfig mirrors core.GatherSpec declaratively.
type GatherConfig struct {
	Sites     []string `json:"sites"`
	Files     int      `json:"files"`
	FileBytes int64    `json:"file_bytes"`
	Sink      string   `json:"sink"`
	Strategy  string   `json:"strategy"`
	Lanes     int      `json:"lanes,omitempty"`
	Intr      float64  `json:"intrusiveness,omitempty"`
}

// Injection is a timed fault.
type Injection struct {
	At Duration `json:"at"`
	// Kind: "link_scale" (scale From->To by Factor), "kill_node" (kill the
	// Nth worker of site From), "restore_node", "kill_site" (fail every
	// worker at site From), "restore_site".
	Kind   string  `json:"kind"`
	From   string  `json:"from"`
	To     string  `json:"to,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Node   int     `json:"node,omitempty"`
}

// DecodeRoster parses a roster document, rejecting unknown fields so typos
// in config files and API bodies fail loudly instead of silently running a
// different experiment. It performs no semantic validation — that is
// scenario.Validate's job.
func DecodeRoster(r io.Reader) (*Roster, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Roster
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("apiv1: %w", err)
	}
	return &s, nil
}

// EncodeRoster writes a roster document as indented JSON.
func EncodeRoster(w io.Writer, s *Roster) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
