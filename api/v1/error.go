package apiv1

// ErrorResponse is the structured error body every non-2xx /api/v1 response
// carries. For job-spec validation failures (*core.SpecError) Field and
// Reason are populated, so HTTP clients see the same typed error the CLI
// sees, not a flattened message string.
type ErrorResponse struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Field names the offending spec field for validation errors
	// (e.g. "Sources[2].Rate"), empty otherwise.
	Field string `json:"field,omitempty"`
	// Reason is the validation failure detail for field errors.
	Reason string `json:"reason,omitempty"`
}
