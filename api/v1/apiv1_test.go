package apiv1_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	apiv1 "sage/api/v1"
	"sage/internal/obs"
)

// fullRoster exercises every Roster field at once.
func fullRoster() *apiv1.Roster {
	return &apiv1.Roster{
		Name:         "everything",
		Seed:         42,
		Topology:     "world",
		Weather:      "rough",
		CrossTraffic: apiv1.Duration(30 * time.Second),
		Workers:      map[string]int{"Medium": 8, "Small": 2},
		Jobs: []apiv1.MultiJobConfig{
			{
				JobConfig: apiv1.JobConfig{
					Sources: []apiv1.SourceConfig{
						{Site: "NEU", Rate: 800, Keys: 100, Skew: 1.1, DiurnalAmplitude: 0.5},
						{Site: "WEU", Rate: 600},
					},
					Sink:               "NUS",
					Window:             apiv1.Duration(30 * time.Second),
					Agg:                "mean",
					Strategy:           "envaware",
					Lanes:              3,
					Intr:               0.5,
					ShipRaw:            true,
					Budget:             0.02,
					Deadline:           apiv1.Duration(45 * time.Second),
					Duration:           apiv1.Duration(4 * time.Minute),
					CheckpointInterval: apiv1.Duration(time.Minute),
				},
				Name:     "alpha",
				Tenant:   "tenant-a",
				Priority: 2,
				Arrival:  apiv1.Duration(10 * time.Second),
			},
		},
		Scheduler: &apiv1.SchedulerConfig{
			MaxConcurrent: 2,
			Policy:        "fair",
			Tick:          apiv1.Duration(5 * time.Second),
			Preempt:       true,
		},
		Injections: []apiv1.Injection{
			{At: apiv1.Duration(time.Minute), Kind: "link_scale", From: "NEU", To: "NUS", Factor: 0.25},
			{At: apiv1.Duration(2 * time.Minute), Kind: "kill_node", From: "WEU", Node: 1},
		},
		Warmup: apiv1.Duration(time.Minute),
	}
}

// TestRosterRoundTrip is the codec property test: encode→decode must return
// the identical document, and a second encode must be byte-identical —
// scenario files, the CLI and the daemon all ride this one codec.
func TestRosterRoundTrip(t *testing.T) {
	orig := fullRoster()
	var buf bytes.Buffer
	if err := apiv1.EncodeRoster(&buf, orig); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	got, err := apiv1.DecodeRoster(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("decode(encode(r)) != r:\n%s", first)
	}

	buf.Reset()
	if err := apiv1.EncodeRoster(&buf, got); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Fatalf("re-encode not byte-identical:\n--- first\n%s\n--- second\n%s", first, buf.String())
	}
}

func TestDecodeRosterRejectsUnknownFields(t *testing.T) {
	_, err := apiv1.DecodeRoster(strings.NewReader(`{"name":"x","windwo":"30s"}`))
	if err == nil {
		t.Fatal("typo field accepted")
	}
	if !strings.Contains(err.Error(), "windwo") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestDurationCodec(t *testing.T) {
	b, err := json.Marshal(apiv1.Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Fatalf("marshal: got %s", b)
	}
	var d apiv1.Duration
	if err := json.Unmarshal([]byte(`"2h45m"`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 2*time.Hour+45*time.Minute {
		t.Fatalf("unmarshal: got %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestSpanPinsTimelineJSON pins the Span wire type against the encoder in
// internal/obs: every phase name and every field the flight recorder writes
// must decode losslessly through apiv1.Span.
func TestSpanPinsTimelineJSON(t *testing.T) {
	tl := obs.NewTimeline(16)
	tl.WindowClose(10*time.Second, "NEU", 500, 7)
	tl.EstimateUsed(10*time.Second, "NEU", "NUS", 88.5, 7)
	tl.Dispatch(10*time.Second, "NEU", "NUS", 1<<20, 3)
	tl.TransferSpan(10*time.Second, 12*time.Second, "NEU", "NUS", 1<<20, 3)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc apiv1.TimelineDoc
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("timeline JSON does not decode through apiv1: %v\n%s", err, buf.String())
	}
	if doc.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", doc.Dropped)
	}
	want := []apiv1.Span{
		{Phase: "window_close", Site: "NEU", StartNS: int64(10 * time.Second), Value: 500, ID: 7},
		{Phase: "estimate", Site: "NEU", Peer: "NUS", StartNS: int64(10 * time.Second), Value: 88.5, ID: 7},
		{Phase: "dispatch", Site: "NEU", Peer: "NUS", StartNS: int64(10 * time.Second), Bytes: 1 << 20, ID: 3},
		{Phase: "transfer", Site: "NEU", Peer: "NUS", StartNS: int64(10 * time.Second), DurNS: int64(2 * time.Second), Bytes: 1 << 20, ID: 3},
	}
	if !reflect.DeepEqual(doc.Spans, want) {
		t.Fatalf("spans = %+v\nwant %+v", doc.Spans, want)
	}
}

// TestSpanPhaseVocabulary keeps the documented phase names in sync with the
// obs enumeration.
func TestSpanPhaseVocabulary(t *testing.T) {
	for _, p := range []obs.Phase{
		obs.PhaseWindowClose, obs.PhaseEstimate, obs.PhaseModelSize,
		obs.PhaseRoute, obs.PhaseDispatch, obs.PhaseChunk, obs.PhaseMerge,
		obs.PhaseTransfer, obs.PhaseWindow, obs.PhaseCheckpoint,
		obs.PhaseFailover, obs.PhaseReplan,
	} {
		if strings.HasPrefix(p.String(), "Phase(") {
			t.Fatalf("phase %d has no name", p)
		}
	}
}

func TestAuditRecordRoundTrip(t *testing.T) {
	recs := []apiv1.AuditRecord{
		{T: apiv1.Duration(time.Minute), Wall: "2026-08-07T00:00:00Z", Kind: apiv1.AuditAPI,
			Action: "submit", Detail: "2 job(s)"},
		{T: apiv1.Duration(90 * time.Second), Wall: "2026-08-07T00:00:01Z", Kind: apiv1.AuditTransfer,
			Transfer: &apiv1.TransferAudit{
				JobID: 1, From: "NEU", To: "NUS", Strategy: "envaware",
				Bytes: 1 << 20, Lanes: 3,
				PredictedMBps: 80, PredictedTime: apiv1.Duration(2 * time.Second), PredictedCost: 0.01,
				ActualMBps: 75.5, ActualTime: apiv1.Duration(2500 * time.Millisecond), ActualCost: 0.012,
				NodesUsed: 2, Replans: 1,
			}},
		{T: apiv1.Duration(2 * time.Minute), Wall: "2026-08-07T00:00:02Z", Kind: apiv1.AuditPlanner,
			Planner: &apiv1.PlannerAudit{Replans: 3, CacheHits: 10, Repairs: 2, FullRecomputes: 1, DirtyEdges: 7, ChangedEdges: 4}},
	}
	for _, rec := range recs {
		b, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		var got apiv1.AuditRecord
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("%s record does not round-trip: %v", rec.Kind, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("%s record changed in flight:\n%+v\n%+v", rec.Kind, rec, got)
		}
	}
}
