package apiv1

// Report wire types: the JSON shapes of a job's summary, a finished
// multi-job report, and the live status rows GET /api/v1/jobs serves. The
// converters from the scheduler's in-memory types live in internal/sched
// (sched.JobStatus.Wire, sched.MultiReport.Wire) so this package stays pure
// wire; both the daemon and `sagesim -jobs-file -report-json` emit through
// them.

// Summary is the wire form of a latency/completion distribution in seconds.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// RunReport is the wire summary of one finished single-job run (the
// HTTP-facing subset of core.Report).
type RunReport struct {
	Windows     int     `json:"windows"`
	Incomplete  int     `json:"incomplete"`
	TotalEvents int64   `json:"total_events"`
	TotalBytes  int64   `json:"total_bytes"`
	TotalCost   float64 `json:"total_cost"`
	EgressCost  float64 `json:"egress_cost"`
	VMSeconds   float64 `json:"vm_seconds"`
	Latency     Summary `json:"latency"`
}

// JobReport is one job's row in a finished multi-job report.
type JobReport struct {
	Name      string `json:"name"`
	Tenant    string `json:"tenant"`
	Priority  int    `json:"priority,omitempty"`
	JobID     int    `json:"job_id"`
	Cancelled bool   `json:"cancelled,omitempty"`
	// Arrived/Admitted/Finished are virtual-time instants; Wait and
	// Completion are the derived queue delay and arrival-to-finish span.
	Arrived     Duration   `json:"arrived"`
	Admitted    Duration   `json:"admitted"`
	Finished    Duration   `json:"finished"`
	Wait        Duration   `json:"wait"`
	Completion  Duration   `json:"completion"`
	Preemptions int        `json:"preemptions,omitempty"`
	Report      *RunReport `json:"report,omitempty"`
}

// MultiReport is the wire form of a finished roster run.
type MultiReport struct {
	Policy        string      `json:"policy"`
	MaxConcurrent int         `json:"max_concurrent"`
	Jobs          []JobReport `json:"jobs"`
	Makespan      Duration    `json:"makespan"`
	Completion    Summary     `json:"completion"`
	TotalEvents   int64       `json:"total_events"`
	TotalBytes    int64       `json:"total_bytes"`
	TotalCost     float64     `json:"total_cost"`
	TotalEgress   float64     `json:"total_egress"`
	TotalVMSecs   float64     `json:"total_vm_seconds"`
	// Fingerprint is the FNV-1a hash over every deterministic per-job field
	// (cancelled rows excluded), hex-encoded. Two runs of the same surviving
	// roster agree on it iff the scheduler behaved identically.
	Fingerprint string `json:"fingerprint"`
}

// JobStatus is one live row of GET /api/v1/jobs: queue state plus running
// spend, readable while the simulation advances.
type JobStatus struct {
	Name     string `json:"name"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	// State is submitted|queued|running|paused|done|cancelled.
	State string `json:"state"`
	// JobID is the engine-assigned id, -1 until the job is admitted.
	JobID       int      `json:"job_id"`
	Arrived     Duration `json:"arrived,omitempty"`
	Admitted    Duration `json:"admitted,omitempty"`
	Finished    Duration `json:"finished,omitempty"`
	EstDuration Duration `json:"est_duration,omitempty"`
	EstEgress   float64  `json:"est_egress,omitempty"`
	Preemptions int      `json:"preemptions,omitempty"`
	// Windows/Cost/Egress are live: what the job has completed and spent so
	// far at the snapshot instant.
	Windows int     `json:"windows"`
	Cost    float64 `json:"cost"`
	Egress  float64 `json:"egress"`
}

// JobList is the body of GET /api/v1/jobs.
type JobList struct {
	// Now is the virtual clock at the snapshot.
	Now  Duration    `json:"now"`
	Jobs []JobStatus `json:"jobs"`
}

// SubmitResponse is the body of a successful POST /api/v1/jobs.
type SubmitResponse struct {
	// Now is the virtual clock at submission.
	Now Duration `json:"now"`
	// Submitted lists the accepted job names in roster order.
	Submitted []string `json:"submitted"`
}

// Clock is the body of GET /api/v1/clock and the response to clock actions.
type Clock struct {
	Now    Duration `json:"now"`
	Paused bool     `json:"paused"`
	// Fired counts simulation events executed so far.
	Fired uint64 `json:"fired"`
}

// ClockAction is the body of POST /api/v1/clock.
type ClockAction struct {
	// Action is "pause" or "resume".
	Action string `json:"action"`
}
