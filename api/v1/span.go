package apiv1

// Span is the wire form of one flight-recorder record, the element type of
// GET /api/v1/timeline and `sageinspect -spans`. It is the decode-side twin
// of internal/obs.Timeline.WriteJSON: the phase is the obs phase name
// ("window_close", "estimate", "dispatch", "transfer", ...), start/dur are
// virtual-time nanoseconds. A round-trip test in this package pins the two
// against each other so the encoder and this type cannot drift.
type Span struct {
	Phase string `json:"phase"`
	Site  string `json:"site,omitempty"`
	Peer  string `json:"peer,omitempty"`
	// StartNS/DurNS are virtual-time nanoseconds from the simulation epoch.
	StartNS int64   `json:"start_ns"`
	DurNS   int64   `json:"dur_ns"`
	Bytes   int64   `json:"bytes,omitempty"`
	Value   float64 `json:"value,omitempty"`
	ID      uint64  `json:"id,omitempty"`
}

// TimelineDoc is the body of GET /api/v1/timeline: the retained spans
// oldest-first plus how many older spans the bounded ring evicted.
type TimelineDoc struct {
	Spans   []Span `json:"spans"`
	Dropped uint64 `json:"dropped"`
}
