// Geomapreduce: the scientific workload that motivated geo-distributed data
// management — a MapReduce job too large for one datacenter runs across
// three sites, and its partial results (1000 files per site) must reach a
// meta-reducer in a fourth. The example moves the same dataset three ways:
// staging through cloud storage (the provider's only native option), SAGE
// with environment-aware direct lanes, and SAGE with multi-datacenter paths,
// then prints the comparison.
package main

import (
	"fmt"
	"time"

	"sage/internal/baseline"
	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/transfer"
	"sage/internal/workload"
)

const (
	filesPerSite = 1000
	fileBytes    = 4 << 20 // 4 MiB partials
)

var sites = []cloud.SiteID{cloud.NorthEU, cloud.WestEU, cloud.SouthUS}

func sageRun(strategy transfer.Strategy) (*core.GatherReport, error) {
	engine := core.NewEngine(core.WithSeed(11))
	engine.DeployEverywhere(cloud.Medium, 8)
	engine.Sched.RunFor(time.Minute)
	return engine.Gather(core.GatherSpec{
		Partials: workload.Partials{Sites: sites, Files: filesPerSite, FileBytes: fileBytes},
		Sink:     cloud.NorthUS,
		Strategy: strategy,
		Lanes:    4,
		Intr:     0.5,
	})
}

func blobRun() (time.Duration, float64) {
	engine := core.NewEngine(core.WithSeed(11))
	store := baseline.NewBlobStore(engine.Net, cloud.NorthUS, baseline.BlobOptions{})
	remaining := len(sites)
	var makespan time.Duration
	var cost float64
	start := engine.Sched.Now()
	for _, site := range sites {
		src := engine.Net.NewNode(site, cloud.Medium)
		dst := engine.Net.NewNode(cloud.NorthUS, cloud.Medium)
		err := store.Relay(baseline.RelaySpec{
			Src: src, Dst: dst, Files: filesPerSite, FileBytes: fileBytes, Parallel: 4,
		}, func(r baseline.RelayResult) {
			remaining--
			cost += r.Cost
			if d := engine.Sched.Now() - start; d > makespan {
				makespan = d
			}
		})
		if err != nil {
			panic(err)
		}
	}
	for remaining > 0 {
		engine.Sched.RunFor(time.Minute)
	}
	return makespan, cost
}

func main() {
	total := int64(len(sites)) * filesPerSite * fileBytes
	fmt.Printf("moving %d files x %d sites (%.1f GiB) to the meta-reducer in %s\n\n",
		filesPerSite, len(sites), float64(total)/(1<<30), cloud.NorthUS)

	blobDur, blobCost := blobRun()
	fmt.Printf("%-22s %10v  $%.3f\n", "cloud storage staging:", blobDur.Round(time.Second), blobCost)

	for _, s := range []transfer.Strategy{transfer.EnvAware, transfer.MultipathDynamic} {
		rep, err := sageRun(s)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %10v  $%.3f  (%.1fx faster than staging)\n",
			"SAGE "+s.String()+":", rep.Makespan.Round(time.Second), rep.TotalCost,
			blobDur.Seconds()/rep.Makespan.Seconds())
	}
}
