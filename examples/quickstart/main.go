// Quickstart: run a geo-distributed streaming average over three datacenters
// in a dozen lines. Events arrive in Dublin, Amsterdam and San Antonio; SAGE
// aggregates locally, ships windowed partials with an environment-aware
// strategy, and merges them in Chicago.
package main

import (
	"fmt"
	"time"

	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/stream"
	"sage/internal/transfer"
	"sage/internal/workload"
)

func main() {
	engine := core.NewEngine(core.WithSeed(42))
	engine.DeployEverywhere(cloud.Medium, 4)

	report, err := engine.Run(core.JobSpec{
		Sources: []core.SourceSpec{
			{Site: cloud.NorthEU, Rate: workload.ConstantRate(500)},
			{Site: cloud.WestEU, Rate: workload.ConstantRate(500)},
			{Site: cloud.SouthUS, Rate: workload.ConstantRate(500)},
		},
		Sink:     cloud.NorthUS,
		Window:   30 * time.Second,
		Agg:      stream.Mean,
		Strategy: transfer.EnvAware,
	}, 5*time.Minute)
	if err != nil {
		panic(err)
	}

	fmt.Printf("completed %d windows over %d events\n", report.Windows, report.TotalEvents)
	fmt.Printf("median window latency: %.2fs, WAN bytes: %d, cost: $%.4f\n",
		report.LatencySummary.P50, report.TotalBytes, report.TotalCost)
	for _, kv := range report.Global.TopK(3) {
		fmt.Printf("  %s -> %.2f\n", kv.Key, kv.Value)
	}
}
