// Replication: disseminate a dataset from one datacenter to several others —
// the nightly backup / dataset-publication pattern. The example replicates
// 512 MB from Dublin to all four US datacenters twice: once as independent
// unicast transfers (each copy crosses the Atlantic), once over a SAGE
// dissemination tree (the Atlantic is crossed once and US sites fan out
// over the fast domestic mesh), then prints the comparison and the tree.
package main

import (
	"fmt"
	"time"

	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/transfer"
)

func run(tree bool) transfer.DisseminateResult {
	engine := core.NewEngine(core.WithSeed(21))
	engine.DeployEverywhere(cloud.Medium, 10)
	engine.Sched.RunFor(time.Minute) // learn the links

	var res *transfer.DisseminateResult
	err := engine.Mgr.Disseminate(transfer.DisseminateRequest{
		From:  cloud.NorthEU,
		Dests: []cloud.SiteID{cloud.NorthUS, cloud.SouthUS, cloud.EastUS, cloud.WestUS},
		Size:  512 << 20,
		Tree:  tree,
		Intr:  0.5,
	}, func(x transfer.DisseminateResult) { res = &x })
	if err != nil {
		panic(err)
	}
	for res == nil {
		engine.Sched.RunFor(10 * time.Second)
	}
	return *res
}

func main() {
	uni := run(false)
	tree := run(true)

	fmt.Println("replicating 512 MB from NEU to 4 US datacenters:")
	for _, r := range []struct {
		name string
		res  transfer.DisseminateResult
	}{{"unicast", uni}, {"tree", tree}} {
		fmt.Printf("  %-8s makespan %8v   src egress %4d MB   WAN total %4d MB   $%.4f\n",
			r.name, r.res.Makespan.Round(time.Second),
			r.res.SrcEgressBytes>>20, r.res.WANBytes>>20, r.res.Cost)
	}
	fmt.Printf("\ntree used: %s\n", tree.TreeUsed)
	fmt.Println("\nper-destination delivery (tree):")
	for _, d := range tree.Dests {
		fmt.Printf("  %s after %v\n", d.Dest, d.Duration.Round(time.Second))
	}
}
