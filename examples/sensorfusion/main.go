// Sensorfusion: a realistic multi-site telemetry pipeline. Five datacenters
// each ingest a diurnal stream of skewed sensor readings; a filter drops
// out-of-range samples, per-sensor maxima are aggregated locally, and
// windowed partials are shipped over multi-datacenter paths to a
// meta-reducer. The same pipeline then runs centralized (every raw event
// shipped to the sink) to show what local aggregation saves in WAN bytes,
// money and window latency.
package main

import (
	"fmt"
	"time"

	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/rng"
	"sage/internal/stream"
	"sage/internal/transfer"
	"sage/internal/workload"
)

func run(shipRaw bool) *core.Report {
	engine := core.NewEngine(core.WithSeed(7))
	engine.DeployEverywhere(cloud.Medium, 6)
	engine.Sched.RunFor(time.Minute) // let the monitor learn the links

	gens := rng.New(7)
	var sources []core.SourceSpec
	for _, site := range engine.Net.Topology().SiteIDs() {
		if site == cloud.NorthUS {
			continue // the sink hosts no sensors
		}
		sources = append(sources, core.SourceSpec{
			Site: site,
			// Day/night modulation, peak ~1500 ev/s.
			Rate: workload.DiurnalRate(1000, 0.5, 24*time.Hour),
			Gen: workload.NewSensorGen(gens.Split(string(site)), site, workload.SensorOpts{
				Keys: 500, Skew: 1.4, Mean: 50, Stddev: 12,
			}),
		})
	}

	report, err := engine.Run(core.JobSpec{
		Sources: sources,
		Sink:    cloud.NorthUS,
		Window:  time.Minute,
		Agg:     stream.Max,
		// Physically impossible readings are sensor faults: drop them.
		Map: func(e stream.Event) (stream.Event, bool) {
			return e, e.Value > 0 && e.Value < 150
		},
		ShipRaw:  shipRaw,
		Strategy: transfer.MultipathDynamic,
		Intr:     0.25, // transfers share VMs with the ingest pipeline
	}, 15*time.Minute)
	if err != nil {
		panic(err)
	}
	return report
}

func main() {
	for _, mode := range []struct {
		name string
		raw  bool
	}{{"SAGE (local partials)", false}, {"centralized (ship raw)", true}} {
		rep := run(mode.raw)
		fmt.Printf("%-24s %d windows, p95 latency %5.2fs, WAN %8d KB, spent $%.4f\n",
			mode.name+":", rep.Windows, rep.LatencySummary.P95,
			rep.TotalBytes/1024, rep.TotalCost)
	}
	rep := run(false)
	fmt.Println("\nhottest sensors across all sites (window max):")
	for _, kv := range rep.Global.TopK(5) {
		fmt.Printf("  %s peaked at %.1f\n", kv.Key, kv.Value)
	}
}
