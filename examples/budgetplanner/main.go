// Budgetplanner: explore the cost/time tradeoff before committing money.
// Given a dataset size and a source/destination pair, the planner consults
// the live monitor estimate and the cost/time model to print, for each
// candidate node count, the predicted transfer time and cost — then shows
// which count a set of budgets buys and verifies one prediction by actually
// running the transfer.
package main

import (
	"fmt"
	"time"

	"sage/internal/cloud"
	"sage/internal/core"
	"sage/internal/stats"
	"sage/internal/transfer"
)

func main() {
	const size = 2 << 30 // 2 GiB
	from, to := cloud.NorthEU, cloud.NorthUS

	engine := core.NewEngine(core.WithSeed(5))
	engine.DeployEverywhere(cloud.Medium, 12)
	engine.Sched.RunFor(2 * time.Minute) // learn the links

	est, sigma := engine.Monitor.Estimate(from, to)
	fmt.Printf("monitored %s->%s: %.2f MB/s (sigma %.2f)\n\n", from, to, est, sigma)

	params := engine.Params
	params.Intr = 0.5
	tb := stats.NewTable(fmt.Sprintf("predictions for %s", stats.FmtBytes(size)),
		"nodes", "predicted time", "predicted cost")
	for _, p := range params.Sweep(size, est, 10) {
		tb.Add(fmt.Sprintf("%d", p.Nodes), stats.FmtDur(p.Time), stats.FmtMoney(p.Cost))
	}
	fmt.Println(tb.String())

	knee := params.Knee(size, est, 10)
	fmt.Printf("cost/time knee: %d nodes\n\n", knee)

	// Egress (~$0.24 for 2 GiB) is a constant floor; the budget's variable
	// part buys VM-time, so interesting budgets sit just above the floor.
	floor := params.EgressCost(size)
	bt := stats.NewTable("what a budget buys", "budget", "nodes", "predicted time")
	for _, budget := range []float64{floor * 0.98, floor * 1.01, floor * 1.03, floor * 1.3} {
		if n, ok := params.NodesForBudget(size, est, budget, 10); ok {
			bt.Add(stats.FmtMoney(budget), fmt.Sprintf("%d", n),
				stats.FmtDur(params.TransferTime(size, est, n)))
		} else {
			bt.Add(stats.FmtMoney(budget), "infeasible", "-")
		}
	}
	fmt.Println(bt.String())

	// Verify the knee prediction against reality.
	var res *transfer.Result
	_, err := engine.Mgr.Transfer(transfer.Request{
		From: from, To: to, Size: size,
		Strategy: transfer.EnvAware, Lanes: knee, Intr: 0.5,
	}, func(r transfer.Result) { res = &r })
	if err != nil {
		panic(err)
	}
	for res == nil {
		engine.Sched.RunFor(10 * time.Second)
	}
	fmt.Printf("measured with %d nodes: %v at $%.4f (predicted %v at $%.4f)\n",
		knee, res.Duration.Round(time.Second), res.Cost,
		params.TransferTime(size, est, knee).Round(time.Second), params.Cost(size, est, knee))
}
